package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dice/internal/serve"
	"dice/internal/serve/client"
)

// Subprocess smoke tests: build the real binary once, then drive it
// over HTTP and signals the way an operator (or CI's daemon-smoke
// job) would — including the SIGKILL crash that no in-process test
// can stage.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dicebenchd-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dicebenchd")
		out, err := exec.Command("go", "build", "-o", binPath, "dice/cmd/dicebenchd").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// daemonProc is one running daemon subprocess plus its scraped address.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error // resolves with cmd.Wait
	out  *strings.Builder
	mu   *sync.Mutex
}

// startDaemon launches the binary on an ephemeral port and scrapes
// the "listening on" line for the bound address.
func startDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(daemonBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, done: make(chan error, 1), out: &strings.Builder{}, mu: &sync.Mutex{}}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if a, ok := strings.CutPrefix(line, "dicebenchd: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	go func() { p.done <- cmd.Wait() }()

	select {
	case p.addr = <-addrCh:
	case err := <-p.done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, p.output())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never printed its address\n%s", p.output())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

func (p *daemonProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// waitExit waits for the process to exit within the bound and returns
// its wait error (nil = exit 0).
func (p *daemonProc) waitExit(t *testing.T, bound time.Duration) error {
	t.Helper()
	select {
	case err := <-p.done:
		return err
	case <-time.After(bound):
		p.cmd.Process.Kill()
		t.Fatalf("daemon did not exit within %v\n%s", bound, p.output())
		return nil
	}
}

func (p *daemonProc) client(seed int64) *client.Client {
	return client.New("http://"+p.addr, seed)
}

var smokeSpec = serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 400, Scale: 12}

// The operator path end to end: start, submit over HTTP, poll to
// done, check /healthz, SIGTERM → clean exit 0 within the drain
// bound; then restart on the same journal and read the finished job
// back (replayed, same bytes).
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	want, err := serve.RunSpec(context.Background(), smokeSpec, 0)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "smoke.journal")
	p := startDaemon(t, "-journal", journal, "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := p.client(1)

	st, err := c.Submit(ctx, smokeSpec)
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, p.output())
	}
	st, err = c.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Output != want {
		t.Fatalf("job finished %s; output matches reference: %v", st.State, st.Output == want)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Done != 1 || h.Self.Goroutines <= 0 {
		t.Fatalf("healthz = %+v", h)
	}

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.waitExit(t, 45*time.Second); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, p.output())
	}
	if out := p.output(); !strings.Contains(out, "clean shutdown") {
		t.Fatalf("no clean-shutdown line:\n%s", out)
	}

	// Restart on the same journal: the finished job must replay with
	// its output intact, not re-run.
	p2 := startDaemon(t, "-journal", journal, "-q")
	st2, err := p2.client(2).Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Replayed || st2.State != serve.StateDone || st2.Output != want {
		t.Fatalf("replayed status: replayed=%v state=%s output-match=%v",
			st2.Replayed, st2.State, st2.Output == want)
	}
	if out := p2.output(); !strings.Contains(out, "journal replayed 1 jobs (0 re-enqueued)") {
		t.Fatalf("replay summary missing:\n%s", out)
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	p2.waitExit(t, 45*time.Second)
}

// The crash bar from the issue: SIGKILL the daemon mid-job, restart
// it on the same journal, and the interrupted job re-runs to bytes
// identical to a run that was never interrupted.
func TestDaemonSIGKILLRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	// A heavier spec so SIGKILL reliably lands while it is running.
	spec := serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 150_000, Scale: 12}
	want, err := serve.RunSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "crash.journal")
	p := startDaemon(t, "-journal", journal, "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := p.client(3)

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the daemon journals the start (state running), then
	// kill it without ceremony.
	deadline := time.Now().Add(time.Minute)
	for {
		got, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == serve.StateRunning {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job finished (%s) before SIGKILL could land; raise its refs", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.done // SIGKILL: no clean shutdown, journal has submit+start only

	p2 := startDaemon(t, "-journal", journal, "-q")
	if out := p2.output(); !strings.Contains(out, "journal replayed 1 jobs (1 re-enqueued)") {
		t.Fatalf("interrupted job not re-enqueued:\n%s", out)
	}
	st2, err := p2.client(4).Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != serve.StateDone {
		t.Fatalf("re-run finished %s (%s)", st2.State, st2.Error)
	}
	if !st2.Replayed {
		t.Fatal("re-run not marked replayed")
	}
	if st2.Output != want {
		t.Fatalf("re-run diverged from uninterrupted reference (%d vs %d bytes)", len(st2.Output), len(want))
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	if err := p2.waitExit(t, 45*time.Second); err != nil {
		t.Fatalf("SIGTERM exit after replay: %v\n%s", err, p2.output())
	}
}

// Flag validation fails fast with exit 1, before binding or journal
// creation.
func TestDaemonRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	cmd := exec.Command(daemonBinary(t), "-queue-cap", "0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		cmd.Process.Kill()
		t.Fatalf("daemon accepted -queue-cap 0:\n%s", out)
	}
	if !strings.Contains(string(out), "queue-cap") {
		t.Fatalf("unhelpful error: %s", out)
	}
}

// cellSmokeSpec is a small cell-matrix job for the streaming smokes:
// four cells heavy enough that completion is staggered, with epoch
// metrics enabled so the stream carries all three event kinds.
func cellSmokeSpec(refs int) serve.JobSpec {
	return serve.JobSpec{
		Cells: []serve.CellSpec{
			{Workload: "gcc", Policy: "dice", Refs: refs, Scale: 12},
			{Workload: "gcc", Policy: "tsi", Refs: refs, Scale: 12},
			{Workload: "mcf", Policy: "dice", Refs: refs, Scale: 12},
			{Workload: "mcf", Policy: "tsi", Refs: refs, Scale: 12},
		},
		Workers:      1,
		MetricsEpoch: 5000,
	}
}

// The streaming wire end to end through the real binary: cells and
// epoch snapshots arrive over GET /jobs/{id}/stream while the job
// runs, the done event closes the stream, and the streamed cells are
// byte-identical to the terminal status's output.
func TestDaemonStreamLiveParity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	p := startDaemon(t, "-journal", filepath.Join(t.TempDir(), "stream.journal"), "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := p.client(5)

	spec := cellSmokeSpec(2000)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, p.output())
	}
	var (
		streamed []serve.CellResult
		epochs   int
	)
	final, err := c.Stream(ctx, st.ID, func(ev serve.StreamEvent) error {
		switch ev.Kind {
		case serve.StreamCell:
			streamed = append(streamed, *ev.Cell)
		case serve.StreamEpoch:
			epochs++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v\n%s", err, p.output())
	}
	if final.State != serve.StateDone {
		t.Fatalf("stream ended %s (%s)", final.State, final.Error)
	}
	if epochs == 0 {
		t.Fatal("no epoch snapshots streamed")
	}

	fin, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.DecodeCellResults(strings.NewReader(fin.Output))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d cells, output holds %d", len(streamed), len(want))
	}
	for i := range want {
		if fmt.Sprintf("%+v", streamed[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("cell %d diverges between stream and output:\n stream %+v\n output %+v", i, streamed[i], want[i])
		}
	}
	t.Logf("daemon-smoke: %d cells and %d epochs streamed live", len(streamed), epochs)
	p.cmd.Process.Signal(syscall.SIGTERM)
	p.waitExit(t, 45*time.Second)
}

// The crash bar for streams: SIGKILL the daemon while a client is
// mid-stream with cells already delivered, restart it on the same
// port and journal, and the same Stream call — never re-issued — must
// ride through the outage, absorb the new generation's re-delivery,
// and finish with every cell delivered exactly once after dedup.
func TestDaemonStreamSIGKILLRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	journal := filepath.Join(t.TempDir(), "streamcrash.journal")
	addr := freeDaemonAddr(t)
	p := startDaemon(t, "-addr", addr, "-journal", journal, "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := p.client(6)

	// Heavy enough that the kill lands with cells still running.
	spec := cellSmokeSpec(60_000)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, p.output())
	}

	firstCell := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	delivered := map[string][]string{} // key -> rendered payloads, dups included
	gens := map[string]bool{}
	type streamEnd struct {
		final serve.StreamEvent
		err   error
	}
	ended := make(chan streamEnd, 1)
	go func() {
		final, err := c.Stream(ctx, st.ID, func(ev serve.StreamEvent) error {
			mu.Lock()
			defer mu.Unlock()
			gens[ev.Gen] = true
			if ev.Kind == serve.StreamCell {
				delivered[ev.Cell.Key] = append(delivered[ev.Cell.Key], fmt.Sprintf("%+v", *ev.Cell))
				once.Do(func() { close(firstCell) })
			}
			return nil
		})
		ended <- streamEnd{final, err}
	}()

	// Kill once the stream has demonstrably delivered a cell, with the
	// rest of the job still running.
	select {
	case <-firstCell:
	case e := <-ended:
		t.Fatalf("stream ended before the kill could land (%v %+v); raise the spec's refs\n%s", e.err, e.final, p.output())
	case <-time.After(2 * time.Minute):
		t.Fatalf("no cell ever streamed\n%s", p.output())
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.done

	// Restart at the same address on the same journal; the unfinished
	// job replays under a fresh generation.
	p2 := startDaemon(t, "-addr", addr, "-journal", journal, "-q")
	e := <-ended
	if e.err != nil {
		t.Fatalf("stream did not survive the restart: %v\n%s", e.err, p2.output())
	}
	if e.final.State != serve.StateDone {
		t.Fatalf("stream ended %s (%s)", e.final.State, e.final.Error)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(gens) < 2 {
		t.Fatalf("stream saw %d generations, want >= 2 (restart not exercised)", len(gens))
	}
	// Every cell delivered; re-deliveries are byte-identical, so a
	// consumer deduplicating on the canonical key loses nothing.
	if len(delivered) != len(spec.Cells) {
		t.Fatalf("stream delivered %d distinct cells, want %d", len(delivered), len(spec.Cells))
	}
	for key, payloads := range delivered {
		for _, pay := range payloads[1:] {
			if pay != payloads[0] {
				t.Fatalf("cell %s re-delivered with different bytes", key)
			}
		}
	}

	// The terminal output agrees with the stream, each cell exactly once.
	fin, err := p2.client(7).Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.DecodeCellResults(strings.NewReader(fin.Output))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(spec.Cells) {
		t.Fatalf("final output holds %d cells, want %d", len(want), len(spec.Cells))
	}
	for _, w := range want {
		payloads := delivered[w.Key]
		if len(payloads) == 0 {
			t.Fatalf("cell %s in output but never streamed", w.Key)
		}
		if payloads[0] != fmt.Sprintf("%+v", w) {
			t.Fatalf("cell %s diverges between stream and final output", w.Key)
		}
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	p2.waitExit(t, 45*time.Second)
}

// freeDaemonAddr picks a free localhost TCP address by binding and
// releasing it, so a killed daemon can be restarted at the same base
// URL its client is retrying.
func freeDaemonAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
