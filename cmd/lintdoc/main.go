// Command lintdoc enforces doc comments on exported identifiers, a
// stdlib-only replacement for the missing-doc checks of revive/golint
// (which this repo deliberately does not depend on). It walks the
// package directories named on the command line and reports every
// exported package-level declaration, method, or struct field that
// lacks a doc comment, exiting nonzero when any are missing.
//
// Usage:
//
//	lintdoc ./internal/obs ./internal/fault ./internal/parallel
//
// Test files are skipped; grouped declarations accept one comment on
// the group; a field list naming several fields needs one comment for
// the group.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lintdoc <package-dir>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	bad := 0
	for _, dir := range flag.Args() {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifiers missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns one formatted
// complaint per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var out []string
	complain := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, complain)
				case *ast.GenDecl:
					checkGen(d, complain)
				}
			}
		}
	}
	return out, nil
}

// checkFunc flags undocumented exported functions and methods on
// exported receivers.
func checkFunc(d *ast.FuncDecl, complain func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	complain(d.Pos(), what, name)
}

// receiverName unwraps a method receiver type to its base identifier.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	default:
		return ""
	}
}

// checkGen flags undocumented exported types, consts and vars, and
// recurses into exported struct types' fields. A doc comment on the
// grouped declaration covers every name in the group.
func checkGen(d *ast.GenDecl, complain func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				complain(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(s.Name.Name, st, complain)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					complain(n.Pos(), kind, n.Name)
					break // one complaint per spec line
				}
			}
		}
	}
}

// checkFields flags undocumented exported fields of an exported
// struct type; a line comment after the field counts.
func checkFields(typeName string, st *ast.StructType, complain func(token.Pos, string, string)) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				complain(n.Pos(), "field", typeName+"."+n.Name)
				break
			}
		}
	}
}
