// Command dicebench regenerates the paper's evaluation: every figure and
// table (Figures 1f, 4, 7, 10-15; Tables 4-8; the CIP accuracy sweep).
// Results print as aligned text tables with the paper's reference numbers
// in the notes, so paper-vs-measured comparison is direct.
//
// Usage:
//
//	dicebench -run all            # everything (several minutes)
//	dicebench -run fig10          # the headline result
//	dicebench -run table4,table8  # a comma-separated subset
//	dicebench -workers 1          # bit-exact serial reference schedule
//	dicebench -list
//
// -refs trades fidelity for speed (default 60000 references per core).
// -workers bounds the concurrent simulations (default: one per CPU);
// results are byte-identical for every worker count because each
// simulation is a deterministic function of (config, workload).
// Workload build products (graphs, kernel traces) are cached and shared
// across the matrix; -artifact-cache=false forces every simulation to
// build its workload cold, which changes nothing but wall-clock time.
//
// -fault-ber/-fault-seed/-fault-policy inject deterministic bit errors
// into every simulation (the fault-sweep experiment sweeps its own BER
// points regardless). Ctrl-C or SIGTERM (via the shared
// internal/sigctx helper) cancels queued simulations and prints the
// reports finished so far as a partial run; a second signal kills the
// process immediately.
//
// Observability (see METRICS.md): -metrics-out collects an epoch-metrics
// time series from every simulation executed (-metrics-epoch sets the
// sampling period) and writes them all to one file, keyed by
// "<config>|<workload>"; -cpuprofile/-memprofile write pprof profiles of
// the benchmark process; -selfstats prints the simulator's own
// allocation cost normalized per million simulated ticks. None of these
// change simulation results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dice/internal/experiments"
	"dice/internal/obs"
	"dice/internal/parallel"
	"dice/internal/sigctx"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// cliFlags holds every dicebench flag; registerFlags is the one place
// they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	run      *string
	refs     *int
	scale    *uint
	workers  *int
	faultBER *float64
	faultSd  *uint64
	faultPol *string
	artCache *bool
	simCore  *string
	list     *bool
	verbose  *bool

	metricsOut   *string
	metricsEpoch *uint64
	cpuProfile   *string
	memProfile   *string
	selfStats    *bool
}

// registerFlags declares the dicebench flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		run:      fs.String("run", "all", "experiment ids, comma separated, or 'all'"),
		refs:     fs.Int("refs", 60_000, "measured references per core"),
		scale:    fs.Uint("scale", 0, "system scale shift (0 = 10)"),
		workers:  fs.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)"),
		faultBER: fs.Float64("fault-ber", 0, "raw bit-error rate injected into every simulation (0 = off)"),
		faultSd:  fs.Uint64("fault-seed", 0, "seed for the deterministic fault stream"),
		faultPol: fs.String("fault-policy", "", "ECC/recovery policy: none|ecc|ecc+quarantine (default)"),
		artCache: fs.Bool("artifact-cache", true, "share built workload artifacts across the matrix (results are identical either way)"),
		simCore:  fs.String("sim-core", "event", "simulation core: event (discrete-event, default) or cycle (cycle-stepped reference; results are identical either way)"),
		list:     fs.Bool("list", false, "list experiments and exit"),
		verbose:  fs.Bool("v", false, "print each simulation as it completes"),

		metricsOut:   fs.String("metrics-out", "", "write per-simulation epoch metrics to this file (.csv = CSV, else JSON)"),
		metricsEpoch: fs.Uint64("metrics-epoch", 100_000, "epoch length in simulated cycles for -metrics-out"),
		cpuProfile:   fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		memProfile:   fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
		selfStats:    fs.Bool("selfstats", false, "print the simulator's own allocation/GC cost"),
	}
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	var (
		run      = o.run
		refs     = o.refs
		scale    = o.scale
		workers  = o.workers
		faultBER = o.faultBER
		faultSd  = o.faultSd
		faultPol = o.faultPol
		artCache = o.artCache
		simCore  = o.simCore
		list     = o.list
		verbose  = o.verbose

		metricsOut   = o.metricsOut
		metricsEpoch = o.metricsEpoch
		cpuProfile   = o.cpuProfile
		memProfile   = o.memProfile
		selfStats    = o.selfStats
	)

	if err := validateFlags(*metricsEpoch, *workers, *simCore); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	workloads.SetCacheEnabled(*artCache)
	coreKind, _ := sim.ParseCoreKind(*simCore) // validated above
	sim.SetCoreKind(coreKind)

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stopProf()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// Reject bad fault flags before any simulation starts; the same
	// validation inside sim.Run would otherwise surface as a worker
	// panic mid-run.
	if err := (sim.Config{FaultBER: *faultBER, FaultPolicy: *faultPol}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	r := experiments.NewRunner(*refs)
	r.Scale = *scale
	r.Verbose = *verbose
	r.Workers = *workers
	r.FaultBER = *faultBER
	r.FaultSeed = *faultSd
	r.FaultPolicy = *faultPol
	if *metricsOut != "" {
		r.MetricsEpoch = *metricsEpoch
	}

	// First SIGINT/SIGTERM cancels queued simulations (in-flight ones
	// finish and the completed reports still print); the shared helper
	// drops the handler once cancelled, so a second signal terminates
	// the process the default way.
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()

	// RunAllCtx submits every experiment's simulation matrix to the
	// worker pool up front, then assembles the reports in the order
	// selected.
	start := time.Now()
	selfBefore := obs.CaptureSelf()
	reports, err := experiments.RunAllCtx(ctx, r, selected)
	for _, rep := range reports {
		fmt.Print(rep.String())
		fmt.Println()
	}
	fmt.Printf("(%d experiments, %d simulations, %d workers, %.1fs)\n",
		len(reports), r.Sims(), parallel.Workers(r.Workers), time.Since(start).Seconds())
	if *selfStats {
		fmt.Println(obs.SelfReport(selfBefore, obs.CaptureSelf(), r.TotalCycles()))
	}
	if *metricsOut != "" {
		if werr := writeRunnerMetrics(r, *metricsOut); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote epoch metrics for %d simulations to %s\n", len(r.Metrics()), *metricsOut)
	}
	if err != nil {
		fmt.Printf("partial run: interrupted with %d of %d experiments assembled\n",
			len(reports), len(selected))
		os.Exit(1)
	}
}

// validateFlags rejects flag values whose types permit nonsense the
// downstream code would only catch as a panic mid-run: a zero metrics
// epoch (the recorder needs a positive sampling period — previously
// `-metrics-epoch 0` with -metrics-out panicked inside the runner), a
// negative worker count (0 is documented as "one per CPU"; a negative
// value was silently treated the same, hiding the typo), and an unknown
// -sim-core value.
func validateFlags(metricsEpoch uint64, workers int, simCore string) error {
	if metricsEpoch == 0 {
		return fmt.Errorf("-metrics-epoch must be a positive cycle count, got 0")
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = one per CPU, 1 = serial), got %d", workers)
	}
	if _, err := sim.ParseCoreKind(simCore); err != nil {
		return fmt.Errorf("-sim-core: %v", err)
	}
	return nil
}

// writeRunnerMetrics exports every recorded epoch series, as CSV when
// the file extension is .csv and JSON otherwise.
func writeRunnerMetrics(r *experiments.Runner, path string) error {
	format := "json"
	if filepath.Ext(path) == ".csv" {
		format = "csv"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteMetrics(f, format)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
