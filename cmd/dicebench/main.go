// Command dicebench regenerates the paper's evaluation: every figure and
// table (Figures 1f, 4, 7, 10-15; Tables 4-8; the CIP accuracy sweep).
// Results print as aligned text tables with the paper's reference numbers
// in the notes, so paper-vs-measured comparison is direct.
//
// Usage:
//
//	dicebench -run all            # everything (several minutes)
//	dicebench -run fig10          # the headline result
//	dicebench -run table4,table8  # a comma-separated subset
//	dicebench -list
//
// -refs trades fidelity for speed (default 60000 references per core).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dice/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment ids, comma separated, or 'all'")
		refs    = flag.Int("refs", 60_000, "measured references per core")
		scale   = flag.Uint("scale", 0, "system scale shift (0 = 10)")
		list    = flag.Bool("list", false, "list experiments and exit")
		verbose = flag.Bool("v", false, "print each simulation as it completes")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	r := experiments.NewRunner(*refs)
	r.Scale = *scale
	r.Verbose = *verbose
	for _, e := range selected {
		start := time.Now()
		rep := e.Run(r)
		fmt.Print(rep.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
