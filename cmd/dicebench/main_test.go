package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the parse-time rejection of flag values the
// flag types allow but the runtime can't use: -metrics-epoch 0 used to
// panic inside the runner, and a negative -workers silently meant
// "one per CPU".
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name         string
		metricsEpoch uint64
		workers      int
		wantErr      string
	}{
		{name: "defaults", metricsEpoch: 100_000, workers: 0},
		{name: "serial workers", metricsEpoch: 100_000, workers: 1},
		{name: "many workers", metricsEpoch: 1, workers: 64},
		{name: "zero epoch", metricsEpoch: 0, workers: 0, wantErr: "-metrics-epoch"},
		{name: "negative workers", metricsEpoch: 100_000, workers: -1, wantErr: "-workers"},
		{name: "very negative workers", metricsEpoch: 100_000, workers: -100, wantErr: "-workers"},
		{name: "both invalid reports epoch first", metricsEpoch: 0, workers: -1, wantErr: "-metrics-epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.metricsEpoch, tc.workers)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d) = %v, want nil", tc.metricsEpoch, tc.workers, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%d, %d) = nil, want error mentioning %q", tc.metricsEpoch, tc.workers, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
