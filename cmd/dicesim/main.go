// Command dicesim runs one workload on one DRAM-cache configuration and
// prints the measured statistics: per-core IPC, cache hit rates, DRAM
// traffic, effective capacity, predictor accuracies, and energy. With
// -baseline it also runs the uncompressed Alloy configuration and reports
// the weighted speedup.
//
// Usage:
//
//	dicesim -workload gcc -policy dice
//	dicesim -workload pr_twi -policy bai -refs 100000 -baseline
//	dicesim -workload gcc -metrics-out run.json -metrics-epoch 100000
//	dicesim -workload gcc -trace-events cip,fault
//	dicesim -list
//
// Observability (see METRICS.md): -metrics-out samples epoch metrics
// into a CSV or JSON time series (format chosen by file extension);
// -trace-events prints a timeline of component events (comma-separated
// components from cip, fault, dcache, dram, sim, or "all");
// -cpuprofile/-memprofile write pprof profiles of the simulator
// itself. None of these change simulation results; neither does
// -artifact-cache=false, which only disables sharing of built workload
// artifacts between the runs of one process (e.g. with -baseline).
//
// SIGINT and SIGTERM are handled through the shared internal/sigctx
// helper (the same shutdown path dicebench and dicebenchd use):
// queued simulations are skipped, completed ones print as a partial
// result with a nonzero exit, and a second signal kills the process
// immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dice/internal/dcache"
	"dice/internal/obs"
	"dice/internal/parallel"
	"dice/internal/sigctx"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// cliFlags holds every dicesim flag; registerFlags is the one place
// they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	workload  *string
	policy    *string
	org       *string
	threshold *int
	refs      *int
	scale     *uint
	capMult   *int
	bwMult    *int
	halfLat   *bool
	prefetch  *string
	faultBER  *float64
	faultSeed *uint64
	faultPol  *string
	baseline  *bool
	workers   *int
	artCache  *bool
	simCore   *string
	list      *bool

	metricsOut   *string
	metricsEpoch *uint64
	traceEvents  *string
	cpuProfile   *string
	memProfile   *string
}

// registerFlags declares the dicesim flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		workload:  fs.String("workload", "gcc", "workload name (see -list)"),
		policy:    fs.String("policy", "dice", "cache policy: base|tsi|nsi|bai|dice|scc"),
		org:       fs.String("org", "alloy", "tag organization: alloy|knl"),
		threshold: fs.Int("threshold", 0, "DICE BAI-insertion threshold in bytes (0 = 36)"),
		refs:      fs.Int("refs", 0, "measured references per core (0 = auto)"),
		scale:     fs.Uint("scale", 0, "system scale shift (0 = 10, i.e. 1/1024 of 1GB)"),
		capMult:   fs.Int("cap", 1, "L4 capacity multiplier"),
		bwMult:    fs.Int("bw", 1, "L4 bandwidth (channel) multiplier"),
		halfLat:   fs.Bool("halflat", false, "halve L4 DRAM latencies"),
		prefetch:  fs.String("prefetch", "none", "L3 prefetch: none|nextline|wide128"),
		faultBER:  fs.Float64("fault-ber", 0, "raw bit-error rate injected into L4 reads (0 = off)"),
		faultSeed: fs.Uint64("fault-seed", 0, "seed for the deterministic fault stream"),
		faultPol:  fs.String("fault-policy", "ecc+quarantine", "ECC/recovery policy: none|ecc|ecc+quarantine"),
		baseline:  fs.Bool("baseline", false, "also run the uncompressed baseline and report speedup"),
		workers:   fs.Int("workers", 0, "concurrent simulations with -baseline (0 = one per CPU, 1 = serial)"),
		artCache:  fs.Bool("artifact-cache", true, "share built workload artifacts across runs in this process (results are identical either way)"),
		simCore:   fs.String("sim-core", "event", "simulation core: event (discrete-event, default) or cycle (cycle-stepped reference; results are identical either way)"),
		list:      fs.Bool("list", false, "list workloads and exit"),

		metricsOut:   fs.String("metrics-out", "", "write epoch metrics to this file (.csv = CSV, else JSON)"),
		metricsEpoch: fs.Uint64("metrics-epoch", 100_000, "epoch length in simulated cycles for -metrics-out"),
		traceEvents:  fs.String("trace-events", "", "print component events: comma-separated from cip,fault,dcache,dram,sim, or 'all'"),
		cpuProfile:   fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		memProfile:   fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	var (
		workload  = o.workload
		policy    = o.policy
		org       = o.org
		threshold = o.threshold
		refs      = o.refs
		scale     = o.scale
		capMult   = o.capMult
		bwMult    = o.bwMult
		halfLat   = o.halfLat
		prefetch  = o.prefetch
		faultBER  = o.faultBER
		faultSeed = o.faultSeed
		faultPol  = o.faultPol
		baseline  = o.baseline
		workers   = o.workers
		artCache  = o.artCache
		simCore   = o.simCore
		list      = o.list

		metricsOut   = o.metricsOut
		metricsEpoch = o.metricsEpoch
		traceEvents  = o.traceEvents
		cpuProfile   = o.cpuProfile
		memProfile   = o.memProfile
	)

	if err := validateFlags(*metricsEpoch, *workers, *simCore); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	workloads.SetCacheEnabled(*artCache)
	coreKind, _ := sim.ParseCoreKind(*simCore) // validated above
	sim.SetCoreKind(coreKind)

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stopProf()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		fmt.Println("evaluation set (Table 3):")
		for _, w := range workloads.All26() {
			fmt.Printf("  %-10s (%s)\n", w.Name, w.Suite)
		}
		fmt.Println("non-memory-intensive set (Fig 13):")
		for _, w := range workloads.LowMPKI13() {
			fmt.Printf("  %-10s\n", w.Name)
		}
		return
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := sim.Config{
		RefsPerCore:  *refs,
		ScaleShift:   *scale,
		CapacityMult: *capMult,
		BWMult:       *bwMult,
		HalfLatency:  *halfLat,
		Threshold:    *threshold,
		FaultBER:     *faultBER,
		FaultSeed:    *faultSeed,
		FaultPolicy:  *faultPol,
	}
	switch strings.ToLower(*policy) {
	case "base":
		cfg.Policy = dcache.PolicyUncompressed
	case "tsi":
		cfg.Policy = dcache.PolicyTSI
	case "nsi":
		cfg.Policy = dcache.PolicyNSI
	case "bai":
		cfg.Policy = dcache.PolicyBAI
	case "dice":
		cfg.Policy = dcache.PolicyDICE
	case "scc":
		cfg.Policy = dcache.PolicySCC
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(1)
	}
	switch strings.ToLower(*org) {
	case "alloy":
		cfg.Org = dcache.OrgAlloy
	case "knl":
		cfg.Org = dcache.OrgKNL
	default:
		fmt.Fprintf(os.Stderr, "unknown org %q\n", *org)
		os.Exit(1)
	}
	switch strings.ToLower(*prefetch) {
	case "none":
	case "nextline":
		cfg.Prefetch = sim.PrefetchNextLine
	case "wide128":
		cfg.Prefetch = sim.PrefetchWide128
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetch %q\n", *prefetch)
		os.Exit(1)
	}

	// Validate up front so flag mistakes fail with one clean line instead
	// of surfacing mid-run (or from a worker goroutine).
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Observer for the main configuration (the baseline fan-out run stays
	// unobserved — its result is only used for the speedup ratio).
	var ob *obs.Observer
	if *metricsOut != "" || *traceEvents != "" {
		ob = &obs.Observer{}
		if *metricsOut != "" {
			ob.Rec = obs.NewRecorder(*metricsEpoch, 0)
		}
		if *traceEvents != "" {
			tr, err := obs.NewTracer(*traceEvents, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ob.Trace = tr
		}
	}

	// SIGINT/SIGTERM cancel queued simulations through the shared
	// helper (the same one dicebench and dicebenchd use); whatever
	// finished prints as a partial result. Cancellation granularity is
	// one simulation — an in-flight run completes. A second signal
	// kills the process the default way.
	ctx, stopSignals := sigctx.WithShutdown(context.Background())
	defer stopSignals()

	if !*baseline {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted before the simulation started")
			os.Exit(1)
		}
		res, err := sim.RunObserved(cfg, w, ob)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(res)
		finishObserved(ob, *metricsOut)
		return
	}

	// With -baseline the two simulations are independent; fan them out.
	baseCfg := cfg
	baseCfg.Policy = dcache.PolicyUncompressed
	baseCfg.Org = dcache.OrgAlloy
	cfgs := []sim.Config{cfg, baseCfg}
	results := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	ran := make([]bool, len(cfgs))
	parallel.ForEachCtx(ctx, *workers, len(cfgs), func(i int) {
		var o *obs.Observer
		if i == 0 {
			o = ob
		}
		results[i], errs[i] = sim.RunObserved(cfgs[i], w, o)
		ran[i] = true
	})
	for i, err := range errs {
		if ran[i] && err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if ctx.Err() != nil && (!ran[0] || !ran[1]) {
		// Partial run: print what completed, then exit nonzero so
		// scripts notice the interruption.
		if ran[0] {
			printResult(results[0])
			fmt.Println("\ninterrupted: baseline run skipped, speedup unavailable")
			finishObserved(ob, *metricsOut)
		} else {
			fmt.Println("interrupted before any simulation completed")
		}
		os.Exit(1)
	}
	printResult(results[0])
	fmt.Printf("\nweighted speedup vs uncompressed baseline: %.3f\n",
		sim.Speedup(results[1], results[0]))
	finishObserved(ob, *metricsOut)
}

// validateFlags rejects flag values whose types permit nonsense the
// downstream code would only catch as a panic mid-run: a zero metrics
// epoch (the recorder needs a positive sampling period — previously
// `-metrics-epoch 0` panicked inside obs.NewRecorder), a negative
// worker count (0 is documented as "one per CPU"; a negative value was
// silently treated the same, hiding the typo), and an unknown -sim-core
// value.
func validateFlags(metricsEpoch uint64, workers int, simCore string) error {
	if metricsEpoch == 0 {
		return fmt.Errorf("-metrics-epoch must be a positive cycle count, got 0")
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = one per CPU, 1 = serial), got %d", workers)
	}
	if _, err := sim.ParseCoreKind(simCore); err != nil {
		return fmt.Errorf("-sim-core: %v", err)
	}
	return nil
}

// finishObserved prints the collected event timeline and writes the
// epoch-metrics file once results are on screen.
func finishObserved(ob *obs.Observer, metricsOut string) {
	if ob == nil {
		return
	}
	if ob.Trace != nil {
		fmt.Printf("\nevent timeline (%d events, %d dropped):\n",
			len(ob.Trace.Events()), ob.Trace.Dropped())
		if err := ob.Trace.WriteTimeline(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if ob.Rec != nil && metricsOut != "" {
		if err := writeSeries(metricsOut, ob.Rec.Series()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d epochs (%d dropped) to %s\n",
			len(ob.Rec.Snapshots()), ob.Rec.Dropped(), metricsOut)
	}
}

// writeSeries writes an epoch series to path, as CSV when the file
// extension is .csv and JSON otherwise.
func writeSeries(path string, s obs.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".csv" {
		err = s.WriteCSV(f)
	} else {
		err = s.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func printResult(r sim.Result) {
	fmt.Printf("workload %s, policy %v, %d sets scale\n",
		r.Workload, r.Config.Policy, 1<<24>>r.Config.ScaleShift)
	fmt.Printf("cycles (measured window): %d\n", r.Cycles)
	fmt.Printf("per-core IPC:")
	for _, ipc := range r.IPC {
		fmt.Printf(" %.3f", ipc)
	}
	fmt.Println()
	fmt.Printf("L3: hits=%d misses=%d hit-rate=%.3f\n", r.L3.Hits, r.L3.Misses, r.L3.HitRate())
	fmt.Printf("L4: reads=%d hit-rate=%.3f probes=%d second-probes=%d installs=%d evictions=%d\n",
		r.L4.Reads, r.L4.HitRate(), r.L4.Probes, r.L4.SecondProbes, r.L4.Installs, r.L4.Evictions)
	fmt.Printf("L4 index installs: invariant=%d bai=%d tsi=%d\n",
		r.L4.InstallInvariant, r.L4.InstallBAI, r.L4.InstallTSI)
	fmt.Printf("effective capacity: %.2fx lines/set\n", r.EffCapacity)
	fmt.Printf("CIP: accuracy=%.3f over %d predictions; MAP-I accuracy=%.3f\n",
		r.CIPAccuracy, r.CIPPredictions, r.MAPIAccuracy)
	if r.L4.WritePredictions > 0 {
		fmt.Printf("write-index predictions: accuracy=%.3f over %d\n",
			r.L4.WriteAccuracy(), r.L4.WritePredictions)
	}
	if r.L4.Installs > 0 {
		fmt.Printf("installed-line sizes (8B buckets 0..64):")
		for _, n := range r.L4.InstallSizeBuckets {
			fmt.Printf(" %.0f%%", 100*float64(n)/float64(r.L4.Installs))
		}
		fmt.Println()
	}
	fmt.Printf("stacked DRAM: reads=%d writes=%d rowhit=%d rowswitch=%d bytes=%d\n",
		r.HBM.Reads, r.HBM.Writes, r.HBM.RowHits, r.HBM.RowConflicts,
		r.HBM.BytesRead+r.HBM.BytesWritten)
	fmt.Printf("main memory : reads=%d writes=%d bytes=%d queue-stall=%d\n",
		r.DDR.Reads, r.DDR.Writes, r.DDR.BytesRead+r.DDR.BytesWritten,
		r.DDR.QueueStallCycles)
	fmt.Printf("energy: total=%.3g power=%.3g EDP=%.3g\n",
		r.Energy.Total(), r.Energy.Power(), r.Energy.EDP())
	if r.Config.FaultBER > 0 {
		f := r.Fault
		fmt.Printf("faults injected: frames=%d flipped-bits=%d corrected=%d detected=%d silent=%d\n",
			f.Frames.Value(), f.Flipped.Value(), f.Corrected.Value(),
			f.Detected.Value(), f.Silent.Value())
		fmt.Printf("fault effects  : refetches=%d flushed-lines=%d dirty-loss=%d checksum-caught=%d silent-hits=%d quarantined-sets=%d\n",
			r.L4.FaultRefetches, r.L4.FaultFlushedLines, r.L4.FaultDirtyLoss,
			r.L4.FaultChecksumCaught, r.L4.FaultSilentHits, r.QuarantinedSets)
	}
}
