package main

import (
	"flag"
	"testing"

	"dice/internal/clidoc"
)

var updateFlagDocs = flag.Bool("update", false, "rewrite the README flag table from the live registrations")

// TestFlagDocsCurrent pins README's dicesim flag table to the live flag
// registrations: the table is generated from registerFlags, so a flag
// added, renamed, or re-defaulted without regenerating the docs fails
// here. Run with -update to regenerate.
func TestFlagDocsCurrent(t *testing.T) {
	fs := flag.NewFlagSet("dicesim", flag.ContinueOnError)
	registerFlags(fs)
	if *updateFlagDocs {
		if err := clidoc.Update("../../README.md", "dicesim", fs); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := clidoc.Verify("../../README.md", "dicesim", fs); err != nil {
		t.Fatalf("%v\n(regenerate with: go test ./cmd/dicesim -run FlagDocsCurrent -update)", err)
	}
}
