package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the parse-time rejection of flag values the
// flag types allow but the runtime can't use: -metrics-epoch 0 used to
// panic inside obs.NewRecorder, a negative -workers silently meant
// "one per CPU", and an unknown -sim-core would only surface once the
// first simulation dispatched.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name         string
		metricsEpoch uint64
		workers      int
		simCore      string
		wantErr      string
	}{
		{name: "defaults", metricsEpoch: 100_000, workers: 0, simCore: "event"},
		{name: "serial workers", metricsEpoch: 100_000, workers: 1, simCore: "event"},
		{name: "many workers", metricsEpoch: 1, workers: 64, simCore: "event"},
		{name: "cycle core", metricsEpoch: 100_000, workers: 0, simCore: "cycle"},
		{name: "zero epoch", metricsEpoch: 0, workers: 0, simCore: "event", wantErr: "-metrics-epoch"},
		{name: "negative workers", metricsEpoch: 100_000, workers: -1, simCore: "event", wantErr: "-workers"},
		{name: "very negative workers", metricsEpoch: 100_000, workers: -100, simCore: "event", wantErr: "-workers"},
		{name: "unknown sim core", metricsEpoch: 100_000, workers: 0, simCore: "warp", wantErr: "-sim-core"},
		{name: "empty sim core", metricsEpoch: 100_000, workers: 0, simCore: "", wantErr: "-sim-core"},
		{name: "both invalid reports epoch first", metricsEpoch: 0, workers: -1, simCore: "event", wantErr: "-metrics-epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.metricsEpoch, tc.workers, tc.simCore)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %q) = %v, want nil", tc.metricsEpoch, tc.workers, tc.simCore, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%d, %d, %q) = nil, want error mentioning %q", tc.metricsEpoch, tc.workers, tc.simCore, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
